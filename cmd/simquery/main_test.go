package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

func writeTestGraph(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.txt")
	// shared-parent graph: s(1,2) = c
	if err := os.WriteFile(path, []byte("0 1\n0 2\n1 3\n2 4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSimPush(t *testing.T) {
	path := writeTestGraph(t)
	if err := run(context.Background(), path, false, false, 1, 3, 0.01, "SimPush", 2, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunBaseline(t *testing.T) {
	path := writeTestGraph(t)
	if err := run(context.Background(), path, false, false, 1, 3, 0.01, "READS", 1, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunUndirected(t *testing.T) {
	path := writeTestGraph(t)
	if err := run(context.Background(), path, false, true, 1, 3, 0.05, "SimPush", 2, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunMissingGraph(t *testing.T) {
	if err := run(context.Background(), "/nonexistent/graph.txt", false, false, 0, 3, 0.05, "SimPush", 2, 1); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRunUnknownMethod(t *testing.T) {
	path := writeTestGraph(t)
	if err := run(context.Background(), path, false, false, 1, 3, 0.05, "Nope", 2, 1); err == nil {
		t.Fatal("unknown method accepted")
	}
}
