// Command simquery answers a single-source SimRank query on a graph file
// with SimPush (or any baseline method) and prints the top-k results with
// query diagnostics. Queries run under a context: -timeout bounds the
// query and Ctrl-C cancels it mid-stage.
//
// Usage:
//
//	simquery -graph web.txt -u 42
//	simquery -graph web.spg -binary -u 42 -eps 0.005 -k 20 -timeout 5s
//	simquery -graph web.txt -u 42 -method ProbeSim -rank 2
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	simpush "github.com/simrank/simpush"
	"github.com/simrank/simpush/internal/graph"
)

func main() {
	var (
		graphPath  = flag.String("graph", "", "edge-list graph file (required)")
		binary     = flag.Bool("binary", false, "graph file is in simgen binary format")
		undirected = flag.Bool("undirected", false, "treat edges as undirected")
		u          = flag.Int("u", 0, "query node")
		k          = flag.Int("k", 10, "top-k result size")
		eps        = flag.Float64("eps", 0.02, "absolute error bound (SimPush)")
		method     = flag.String("method", "SimPush", "method: SimPush | ProbeSim | PRSim | SLING | READS | TSF | TopSim")
		rank       = flag.Int("rank", 2, "parameter setting rank 0(coarse)..4(fine) for baselines")
		seed       = flag.Uint64("seed", 1, "random seed")
		timeout    = flag.Duration("timeout", 0, "per-query deadline (0 = none)")
	)
	flag.Parse()
	if *graphPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if err := run(ctx, *graphPath, *binary, *undirected, int32(*u), *k, *eps, *method, *rank, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "simquery:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, path string, binary, undirected bool, u int32, k int, eps float64, method string, rank int, seed uint64) error {
	t0 := time.Now()
	var g *simpush.Graph
	var err error
	if binary {
		g, err = graph.LoadBinaryFile(path)
	} else {
		g, err = simpush.LoadEdgeList(path, undirected)
	}
	if err != nil {
		return err
	}
	fmt.Printf("loaded %s: n=%d m=%d in %v\n", path, g.N(), g.M(), time.Since(t0))

	if method == "SimPush" {
		client, err := simpush.NewClient(g, simpush.Options{Epsilon: eps})
		if err != nil {
			return err
		}
		// Pin one snapshot for the query + top-k read-off. On a static file
		// graph this is free; against a live GraphSource it guarantees both
		// speak about the same committed epoch.
		view, err := client.View(ctx)
		if err != nil {
			return err
		}
		t1 := time.Now()
		res, err := view.SingleSource(ctx, u, simpush.WithSeed(seed))
		if err != nil {
			return err
		}
		elapsed := time.Since(t1)
		fmt.Printf("query u=%d: %v (L=%d, %d attention nodes, %d walks)\n",
			u, elapsed, res.L, len(res.Attention), res.Walks)
		fmt.Printf("stages: walk=%v source-push=%v gamma=%v reverse-push=%v\n",
			res.Durations.Walk, res.Durations.SourcePush, res.Durations.Gamma, res.Durations.ReversePush)
		printTop(simpush.TopK(res.Scores, k, u))
		return nil
	}

	m, err := simpush.NewMethod(method, g, rank, seed)
	if err != nil {
		return err
	}
	tb := time.Now()
	if err := m.Build(); err != nil {
		return err
	}
	if m.Indexed() {
		fmt.Printf("%s build (%s): %v, index %d bytes\n", m.Name(), m.Setting(), time.Since(tb), m.IndexBytes())
	}
	t1 := time.Now()
	scores, err := m.Query(ctx, u)
	if err != nil {
		return err
	}
	fmt.Printf("query u=%d with %s (%s): %v\n", u, m.Name(), m.Setting(), time.Since(t1))
	printTop(simpush.TopK(scores, k, u))
	return nil
}

func printTop(top []simpush.Ranked) {
	fmt.Println("rank\tnode\tscore")
	for i, r := range top {
		fmt.Printf("%d\t%d\t%.6f\n", i+1, r.Node, r.Score)
	}
}
